// Command hyscale-sim runs ad-hoc autoscaling simulations and prints
// per-service and aggregate request statistics — a quick way to explore how
// the algorithms behave outside the paper's fixed experiment grid.
//
// The -algo flag accepts a comma-separated list; each algorithm compiles to
// its own RunSpec and the specs fan out across -parallel workers with
// identical results for any worker count:
//
//	hyscale-sim -algo hybridmem -kind mixed -services 10 -duration 20m
//	hyscale-sim -algo kubernetes,hybrid,hybridmem -parallel 3 -kind cpu -rps 20 -load burst
//	hyscale-sim -algo manager-cost,hybridmem -kind mixed -load burst
//
// See docs/ALGORITHMS.md for every accepted -algo spelling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyscale"
	"hyscale/internal/loadgen"
	"hyscale/internal/monitor"
	"hyscale/internal/scenario"
	"hyscale/internal/workload"
)

func main() {
	var (
		algo     = flag.String("algo", "hybridmem", "autoscaler(s), comma-separated: kubernetes|network|hybrid|hybridmem|manager|manager-cost|none (see docs/ALGORITHMS.md)")
		kind     = flag.String("kind", "cpu", "service kind: cpu|mem|net|mixed")
		services = flag.Int("services", 5, "number of microservices")
		nodes    = flag.Int("nodes", 19, "worker nodes")
		rps      = flag.Float64("rps", 12, "base request rate per service")
		load     = flag.String("load", "wave", "load pattern: constant|wave|burst")
		duration = flag.Duration("duration", 15*time.Minute, "simulated duration")
		seed     = flag.Int64("seed", 1, "random seed")
		zones    = flag.Int("zones", 1, "control-plane zones: >1 shards the monitor into per-zone arbiters under a global allocator")
		parallel = flag.Int("parallel", 0, "max runs in flight when comparing algorithms (<=0 uses GOMAXPROCS)")
		config   = flag.String("config", "", "run a JSON scenario file instead of the flag-built workload (see scenarios/)")
	)
	flag.Parse()

	if *config != "" {
		runScenario(*config)
		return
	}

	names := make([]string, 0, *services)
	var runs []hyscale.ServiceRun
	for i := 0; i < *services; i++ {
		name := fmt.Sprintf("svc-%02d", i)
		var spec workload.ServiceSpec
		switch *kind {
		case "cpu":
			spec = hyscale.CPUBoundService(name, 0.12)
		case "mem":
			spec = hyscale.MemoryBoundService(name, 40)
		case "net":
			spec = hyscale.NetworkBoundService(name, 6, 60)
		case "mixed":
			spec = hyscale.MixedService(name, 0.12, 90)
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		var pattern loadgen.Pattern
		switch *load {
		case "constant":
			pattern = hyscale.ConstantLoad(*rps)
		case "burst":
			pattern = hyscale.BurstLoad(*rps*0.5, *rps*2.75, 10*time.Minute, 2*time.Minute)
		case "wave":
			pattern = hyscale.WaveLoad(*rps, 0.3, 8*time.Minute)
		default:
			fatal(fmt.Errorf("unknown load %q", *load))
		}
		runs = append(runs, hyscale.ServiceRun{Spec: spec, Target: 0.5, Load: hyscale.LoadSpecFor(pattern)})
		names = append(names, name)
	}

	algos := strings.Split(*algo, ",")
	specs := make([]hyscale.RunSpec, 0, len(algos))
	for _, a := range algos {
		a = strings.TrimSpace(a)
		spec := hyscale.NewRunSpec("sim/"+a, hyscale.SimConfig{
			Seed:      *seed,
			Nodes:     *nodes,
			Zones:     *zones,
			Algorithm: hyscale.AlgorithmName(a),
		}, *duration)
		spec.Label = a
		spec.Services = runs
		specs = append(specs, spec)
	}

	results, timings, err := hyscale.ExecuteSpecs(*parallel, *seed, specs)
	if err != nil {
		fatal(err)
	}

	for i, res := range results {
		fmt.Printf("algorithm=%s kind=%s services=%d nodes=%d duration=%v\n\n",
			res.Spec.RowLabel(), *kind, *services, *nodes, *duration)
		for _, name := range names {
			s := res.World.Recorder().SummarizeService(name)
			fmt.Printf("%-8s %s  replicas=%d\n", name, s, res.World.Control().ReplicaCount(name))
		}
		fmt.Printf("\nTOTAL    %s\n", res.Summary)
		a := res.Actions
		fmt.Printf("actions: scale-outs=%d scale-ins=%d vertical=%d placement-failures=%d\n",
			a.ScaleOuts, a.ScaleIns, a.Vertical, a.PlacementFailures)
		printZones(res.Zones, res.CrossZone)
		printEvac(res.ZoneEvac)
		if res.ClampedEvents > 0 {
			fmt.Printf("warning: %d events clamped to now (stale-timestamp scheduling)\n", res.ClampedEvents)
		}
		fmt.Printf("wall time: %v\n", timings[i].Elapsed.Round(time.Millisecond))
		if i < len(results)-1 {
			fmt.Println()
		}
	}
}

// runScenario executes a declarative JSON scenario file.
func runScenario(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Parse(f)
	if err != nil {
		fatal(err)
	}
	w, err := sc.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario %s: algorithm=%s nodes=%d duration=%v\n\n", path, sc.Algorithm, len(w.Cluster().Nodes()), time.Duration(sc.Duration))
	services := sc.ExpandedServices()
	shown := services
	if len(shown) > 20 {
		shown = shown[:10]
	}
	for _, svc := range shown {
		s := w.Recorder().SummarizeService(svc.Name)
		fmt.Printf("%-10s %s  replicas=%d\n", svc.Name, s, w.Control().ReplicaCount(svc.Name))
	}
	if len(services) > len(shown) {
		fmt.Printf("… (%d more services)\n", len(services)-len(shown))
	}
	fmt.Printf("\nTOTAL      %s\n", w.Summary())
	fmt.Printf("cost: %s\n", w.CostReport())
	if w.HasCallGraph() {
		cs := w.CascadeStats()
		rc := w.Resilience().Counters()
		fmt.Printf("cascade: roots=%d completed=%d shed=%d deadline-exceeded=%d failed=%d retried=%d retries-denied=%d short-circuited=%d breaker-opens=%d amplification=%.2fx\n",
			cs.RootGenerated, cs.RootCompleted, cs.RootShed, cs.RootDeadline, cs.RootFailed,
			rc.Retries, rc.RetriesDenied, rc.ShortCircuited, rc.BreakerOpens, rc.Amplification())
		for _, key := range cs.EdgeKeys() {
			e := cs.Edges[key]
			fmt.Printf("  edge %-20s issued=%d delivered=%d dropped=%d\n", key, e.Issued, e.Delivered, e.Dropped)
		}
	}
	if rec := w.Control().Recovery(); rec != (monitor.RecoveryCounts{}) || w.MonitorCrashes() > 0 {
		fmt.Printf("self-heal: suspected=%d dead=%d recovered=%d lost=%d replaced=%d readopted=%d drained=%d ckpt-restores=%d cold-restarts=%d monitor-crash-periods=%d\n",
			rec.Suspected, rec.DeclaredDead, rec.Recovered, rec.ReplicasLost, rec.Replaced,
			rec.Readopted, rec.StaleDrained, rec.CheckpointRestores, rec.ColdRestarts, w.MonitorCrashes())
	}
	if zs := w.ZoneSummaries(); zs != nil {
		cz := w.CrossZone()
		printZones(zs, &cz)
		printEvac(w.ZoneEvac())
	}
}

// printZones writes one summary line per zone arbiter plus the global
// allocator's cross-zone counters (no-op for single-zone runs).
func printZones(zones []monitor.ZoneSummary, cross *monitor.CrossZoneCounts) {
	if len(zones) == 0 {
		return
	}
	for _, z := range zones {
		evac := ""
		if z.Evacuated {
			evac = " EVACUATED"
		}
		fmt.Printf("zone %d: nodes=%d services=%d replicas=%d scale-outs=%d scale-ins=%d vertical=%d%s\n",
			z.Zone, z.Nodes, z.Services, z.Replicas, z.Counts.ScaleOuts, z.Counts.ScaleIns, z.Counts.Vertical, evac)
	}
	if cross != nil {
		fmt.Printf("cross-zone: node-leases=%d lease-failures=%d\n", cross.NodeLeases, cross.LeaseFailures)
	}
}

// printEvac writes the zone disaster-recovery summary line. No-op unless
// evacuation was enabled and did something.
func printEvac(ev *monitor.EvacCounts) {
	if ev == nil || *ev == (monitor.EvacCounts{}) {
		return
	}
	fmt.Printf("zone-dr: zones-evacuated=%d services-evacuated=%d replicas-displaced=%d spillover-placements=%d zones-readopted=%d services-readopted=%d\n",
		ev.ZonesEvacuated, ev.ServicesEvacuated, ev.ReplicasDisplaced, ev.SpilloverPlacements, ev.ZonesReadopted, ev.ServicesReadopted)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hyscale-sim: %v\n", err)
	os.Exit(1)
}
