// Command hyscale-server runs a live autoscaling simulation and serves the
// control-plane API over HTTP: the simulation advances in real time (one
// simulated second per wall-clock tick by default) while /v1/... endpoints
// expose services, replicas, nodes, costs and Prometheus-style metrics, and
// POST /v1/services/{name}/scale applies manual overrides.
//
//	hyscale-server -addr :8080 -algo hybridmem -kind mixed -services 8
//	curl localhost:8080/v1/services | jq .
//	curl -XPOST localhost:8080/v1/services/svc-00/scale -d '{"replicas":4}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"hyscale"
	"hyscale/internal/httpapi"
	"hyscale/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		algo     = flag.String("algo", "hybridmem", "autoscaler: kubernetes|network|hybrid|hybridmem|manager|manager-cost (see docs/ALGORITHMS.md)")
		kind     = flag.String("kind", "cpu", "service kind: cpu|mem|net|mixed")
		services = flag.Int("services", 5, "number of microservices")
		nodes    = flag.Int("nodes", 19, "worker nodes")
		rps      = flag.Float64("rps", 12, "base request rate per service")
		speed    = flag.Float64("speed", 1.0, "simulated seconds advanced per wall second")
		zones    = flag.Int("zones", 1, "control-plane zones: >1 shards the monitor and serves per-zone data at /v1/zones")
		observe  = flag.Bool("observe", false, "record the decision-trace journal and serve it at /v1/timeline")
	)
	flag.Parse()

	sim, err := hyscale.NewSimulation(hyscale.SimConfig{
		Seed:      time.Now().UnixNano() % (1 << 31),
		Nodes:     *nodes,
		Zones:     *zones,
		Algorithm: hyscale.AlgorithmName(*algo),
		Observe:   *observe,
	})
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *services; i++ {
		name := fmt.Sprintf("svc-%02d", i)
		var spec workload.ServiceSpec
		switch *kind {
		case "cpu":
			spec = hyscale.CPUBoundService(name, 0.12)
		case "mem":
			spec = hyscale.MemoryBoundService(name, 40)
		case "net":
			spec = hyscale.NetworkBoundService(name, 6, 60)
		case "mixed":
			spec = hyscale.MixedService(name, 0.12, 90)
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		if err := sim.AddService(spec, 0.5, hyscale.WaveLoad(*rps, 0.3, 8*time.Minute)); err != nil {
			fatal(err)
		}
	}

	var mu sync.Mutex
	api := httpapi.New(sim.World(), httpapi.WithLocker(&mu))

	// Advance the simulation in the background: `speed` simulated seconds
	// per wall-clock second, in 100ms steps.
	go func() {
		step := time.Duration(float64(100*time.Millisecond) * *speed)
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		for range ticker.C {
			mu.Lock()
			horizon := sim.World().Engine().Now() + step
			if err := sim.World().Run(horizon); err != nil {
				mu.Unlock()
				log.Printf("engine stopped: %v", err)
				return
			}
			mu.Unlock()
		}
	}()

	log.Printf("hyscale-server: %s on %d nodes, %d %s services, serving %s", *algo, *nodes, *services, *kind, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hyscale-server: %v\n", err)
	os.Exit(1)
}
