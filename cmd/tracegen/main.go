// Command tracegen emits a synthetic Bitbrains-Rnd-like workload trace
// (see internal/trace) either as per-VM GWA-T-12-style CSV files or as the
// across-VM average series (the data behind Figure 9).
//
//	tracegen -vms 500 -duration 1h -out traces/      # per-VM CSVs
//	tracegen -mean                                   # averaged series to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hyscale/internal/trace"
)

func main() {
	var (
		vms      = flag.Int("vms", 500, "number of VM series")
		duration = flag.Duration("duration", time.Hour, "trace span")
		interval = flag.Duration("interval", 30*time.Second, "sampling interval")
		seed     = flag.Int64("seed", 1, "random seed")
		mean     = flag.Bool("mean", false, "print the across-VM average instead of writing files")
		out      = flag.String("out", "", "directory for per-VM CSV files (required unless -mean)")
	)
	flag.Parse()

	cfg := trace.DefaultRndConfig(*seed)
	cfg.VMs = *vms
	cfg.Duration = *duration
	cfg.Interval = *interval
	tr := trace.GenerateRnd(cfg)

	if *mean {
		m := tr.Mean()
		fmt.Println("time_s,avg_cpu_pct,avg_mem_pct")
		for i := 0; i < m.Len(); i++ {
			t := time.Duration(i) * m.Interval
			fmt.Printf("%.0f,%.2f,%.2f\n", t.Seconds(), m.CPUPercent[i], m.MemPercent[i])
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out directory required (or use -mean)")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for i, s := range tr.Series {
		path := filepath.Join(*out, fmt.Sprintf("%d.csv", i+1))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "Timestamp [ms];CPU cores;CPU capacity provisioned [MHZ];CPU usage [MHZ];CPU usage [%];Memory capacity provisioned [KB];Memory usage [KB];Disk read throughput [KB/s];Disk write throughput [KB/s];Network received throughput [KB/s];Network transmitted throughput [KB/s]")
		const provMHz, provKB = 11704.0, 8388608.0
		for j := 0; j < s.Len(); j++ {
			ts := int64(time.Duration(j) * s.Interval / time.Millisecond)
			cpuPct := s.CPUPercent[j]
			memKB := s.MemPercent[j] / 100 * provKB
			fmt.Fprintf(f, "%d;4;%.0f;%.2f;%.3f;%.0f;%.0f;0;0;0;0\n",
				ts, provMHz, cpuPct/100*provMHz, cpuPct, provKB, memKB)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d series to %s\n", len(tr.Series), *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
