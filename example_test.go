package hyscale_test

import (
	"fmt"
	"time"

	"hyscale"
)

// ExampleNewSimulation runs one CPU-bound microservice under the
// CPU+memory hybrid autoscaler and prints whether the run stayed healthy.
// Runs are deterministic for a fixed seed.
func ExampleNewSimulation() {
	sim, err := hyscale.NewSimulation(hyscale.SimConfig{
		Seed:      42,
		Nodes:     8,
		Algorithm: hyscale.AlgoHyScaleCPUMem,
	})
	if err != nil {
		panic(err)
	}
	svc := hyscale.CPUBoundService("api", 0.1)
	if err := sim.AddService(svc, 0.5, hyscale.ConstantLoad(10)); err != nil {
		panic(err)
	}
	if err := sim.Run(5 * time.Minute); err != nil {
		panic(err)
	}
	r := sim.Report()
	fmt.Printf("healthy=%v requests=%d\n", r.FailedPercent() < 1, r.Requests)
	// Output: healthy=true requests=2999
}

// ExampleNewAlgorithm shows how the four paper algorithms are constructed.
func ExampleNewAlgorithm() {
	for _, name := range []hyscale.AlgorithmName{
		hyscale.AlgoKubernetes,
		hyscale.AlgoNetwork,
		hyscale.AlgoHyScaleCPU,
		hyscale.AlgoHyScaleCPUMem,
	} {
		algo, err := hyscale.NewAlgorithm(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(algo.Name())
	}
	// Output:
	// kubernetes
	// network
	// hybrid
	// hybridmem
}

// ExampleBurstLoad demonstrates the paper's high-burst load shape.
func ExampleBurstLoad() {
	load := hyscale.BurstLoad(2, 20, 10*time.Minute, 2*time.Minute)
	fmt.Println(load.Rate(1*time.Minute), load.Rate(5*time.Minute))
	// Output: 20 2
}
