package hyscale

import (
	"testing"
	"time"
)

func TestNewAlgorithm(t *testing.T) {
	for _, name := range []AlgorithmName{AlgoKubernetes, AlgoNetwork, AlgoHyScaleCPU, AlgoHyScaleCPUMem} {
		algo, err := NewAlgorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if algo == nil || algo.Name() != string(name) {
			t.Errorf("%s: got %v", name, algo)
		}
	}
	if algo, err := NewAlgorithm(AlgoNone); err != nil || algo != nil {
		t.Error("AlgoNone should be nil, nil")
	}
	if _, err := NewAlgorithm("bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestServiceSpecHelpers(t *testing.T) {
	cpu := CPUBoundService("a", 0.2)
	if cpu.CPUPerRequest != 0.2 || cpu.Name != "a" {
		t.Errorf("CPUBoundService = %+v", cpu)
	}
	if err := cpu.Validate(); err != nil {
		t.Errorf("CPUBoundService invalid: %v", err)
	}
	mem := MemoryBoundService("m", 64)
	if mem.MemPerRequest != 64 {
		t.Errorf("MemoryBoundService = %+v", mem)
	}
	if err := mem.Validate(); err != nil {
		t.Errorf("MemoryBoundService invalid: %v", err)
	}
	net := NetworkBoundService("n", 8, 80)
	if net.NetPerRequest != 8 || net.InitialReplicaNetMbps != 80 {
		t.Errorf("NetworkBoundService = %+v", net)
	}
	if err := net.Validate(); err != nil {
		t.Errorf("NetworkBoundService invalid: %v", err)
	}
	mixed := MixedService("x", 0.1, 90)
	if mixed.CPUPerRequest != 0.1 || mixed.MemPerRequest != 90 {
		t.Errorf("MixedService = %+v", mixed)
	}
	if err := mixed.Validate(); err != nil {
		t.Errorf("MixedService invalid: %v", err)
	}
}

func TestLoadHelpers(t *testing.T) {
	if ConstantLoad(5).Rate(time.Hour) != 5 {
		t.Error("ConstantLoad wrong")
	}
	w := WaveLoad(10, 0.5, time.Minute)
	if w.Rate(15*time.Second) <= 10 {
		t.Error("WaveLoad peak missing")
	}
	b := BurstLoad(1, 9, 10*time.Minute, time.Minute)
	if b.Rate(30*time.Second) != 9 || b.Rate(5*time.Minute) != 1 {
		t.Error("BurstLoad wrong")
	}
}

func TestSimulationEndToEnd(t *testing.T) {
	sim, err := NewSimulation(SimConfig{Seed: 1, Nodes: 4, Algorithm: AlgoHyScaleCPUMem})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddService(CPUBoundService("api", 0.1), 0.5, ConstantLoad(10)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r := sim.Report()
	if r.Completed < 1000 {
		t.Errorf("completed = %d, want >= 1000", r.Completed)
	}
	if r.FailedPercent() > 1 {
		t.Errorf("failed = %.2f%%", r.FailedPercent())
	}
	if sim.Replicas("api") < 1 {
		t.Error("no replicas")
	}
	sr := sim.ServiceReport("api")
	if sr.Completed != r.Completed {
		t.Error("single-service report should equal aggregate")
	}
	if sim.Actions().Vertical == 0 {
		t.Error("hybridmem issued no vertical actions under load")
	}
	if sim.World() == nil {
		t.Error("World() nil")
	}
}

func TestSimulationDefaults(t *testing.T) {
	sim, err := NewSimulation(SimConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sim.World().Cluster().Nodes()); got != 19 {
		t.Errorf("default nodes = %d, want 19 (paper setup)", got)
	}
	if sim.World().Monitor().Algorithm().Name() != "hybridmem" {
		t.Error("default algorithm should be hybridmem")
	}
}

func TestSimulationCustomNodeShape(t *testing.T) {
	sim, err := NewSimulation(SimConfig{
		Seed: 1, Nodes: 2,
		NodeCPU: 8, NodeMemMB: 16384, NodeNetMbps: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cap := sim.World().Cluster().Node("node-0").Capacity()
	if cap.CPU != 8 || cap.MemMB != 16384 || cap.NetMbps != 2000 {
		t.Errorf("capacity = %v", cap)
	}
}

func TestSimulationBadAlgorithm(t *testing.T) {
	if _, err := NewSimulation(SimConfig{Algorithm: "bogus"}); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestSimulationAlgoNone(t *testing.T) {
	sim, err := NewSimulation(SimConfig{Seed: 1, Nodes: 2, Algorithm: AlgoNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddService(CPUBoundService("a", 0.05), 0.5, ConstantLoad(2)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	a := sim.Actions()
	if a.Vertical != 0 || a.ScaleIns != 0 {
		t.Errorf("AlgoNone scaled: %+v", a)
	}
}

func TestNodeDefaults(t *testing.T) {
	n := NodeDefaults()
	if n.Capacity.CPU != 4 || n.Capacity.MemMB != 8192 {
		t.Errorf("NodeDefaults = %+v", n.Capacity)
	}
}
